//! Simulation results.

/// Aggregate metrics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Policy name (e.g. `"DES/C-DVFS"`, `"FCFS+WF"`).
    pub policy: String,
    /// Total quality `Q = Σ f(p_j)` over every arrived job.
    pub total_quality: f64,
    /// Maximum possible quality `Σ f(w_j)` (every job fully executed).
    pub max_quality: f64,
    /// Total *dynamic* energy in joules, including ambient draw of
    /// non-gating architectures.
    pub energy_joules: f64,
    /// Jobs that arrived within the simulated horizon.
    pub jobs_total: usize,
    /// Jobs fully processed (`p_j = w_j`).
    pub jobs_satisfied: usize,
    /// Jobs partially processed (`0 < p_j < w_j`).
    pub jobs_partial: usize,
    /// Jobs that never ran.
    pub jobs_zero: usize,
    /// Jobs abandoned by the policy (subset of partial/zero).
    pub jobs_discarded: usize,
    /// Policy invocations performed.
    pub invocations: u64,
    /// Simulated horizon in seconds.
    pub sim_seconds: f64,
}

impl SimReport {
    /// Quality normalized against the maximum possible (the paper's
    /// y-axis in every quality figure). 1.0 for an empty run.
    pub fn normalized_quality(&self) -> f64 {
        if self.max_quality > 0.0 {
            self.total_quality / self.max_quality
        } else {
            1.0
        }
    }

    /// Fraction of jobs fully satisfied.
    pub fn satisfaction_rate(&self) -> f64 {
        if self.jobs_total > 0 {
            self.jobs_satisfied as f64 / self.jobs_total as f64
        } else {
            1.0
        }
    }

    /// Mean dynamic power over the horizon (W).
    pub fn mean_power(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.energy_joules / self.sim_seconds
        } else {
            0.0
        }
    }

    /// The composite ⟨quality, energy⟩ score (§II-C).
    pub fn quality_energy(&self) -> qes_core::QualityEnergy {
        qes_core::QualityEnergy::new(self.total_quality, self.energy_joules)
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: quality {:.4} ({:.2}%), energy {:.1} J, jobs {} (sat {}, part {}, zero {}, disc {}), {} invocations over {:.0} s",
            self.policy,
            self.total_quality,
            100.0 * self.normalized_quality(),
            self.energy_joules,
            self.jobs_total,
            self.jobs_satisfied,
            self.jobs_partial,
            self.jobs_zero,
            self.jobs_discarded,
            self.invocations,
            self.sim_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_rates() {
        let r = SimReport {
            policy: "test".into(),
            total_quality: 90.0,
            max_quality: 100.0,
            energy_joules: 500.0,
            jobs_total: 10,
            jobs_satisfied: 7,
            jobs_partial: 2,
            jobs_zero: 1,
            jobs_discarded: 0,
            invocations: 42,
            sim_seconds: 10.0,
        };
        assert!((r.normalized_quality() - 0.9).abs() < 1e-12);
        assert!((r.satisfaction_rate() - 0.7).abs() < 1e-12);
        assert!((r.mean_power() - 50.0).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("90.00%"));
    }

    #[test]
    fn empty_run_defaults() {
        let r = SimReport::default();
        assert_eq!(r.normalized_quality(), 1.0);
        assert_eq!(r.satisfaction_rate(), 1.0);
        assert_eq!(r.mean_power(), 0.0);
    }
}
