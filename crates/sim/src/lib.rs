#![warn(missing_docs)]

//! # qes-sim — discrete-event multicore simulator
//!
//! Drives a [`qes_multicore::SchedulingPolicy`] over a stream of
//! best-effort interactive jobs, reproducing the paper's evaluation
//! methodology (§V):
//!
//! * job arrivals enter a waiting queue;
//! * the policy is invoked on its requested **triggering events** (§IV-E):
//!   quantum ticks, queue-counter thresholds, idle cores, and (for the
//!   baselines) arrivals;
//! * each invocation may move queued jobs onto cores (non-migratory),
//!   replace per-core speed plans, and abandon jobs;
//! * the engine integrates progress and **dynamic energy** exactly
//!   (piecewise-constant speeds), including the *ambient* draw of
//!   architectures that cannot gate idle cores (No-DVFS, S-DVFS);
//! * each job's quality is settled at completion or deadline through the
//!   configured quality function, honouring the partial-evaluation flag.
//!
//! The result is a [`SimReport`] with the paper's two headline metrics —
//! normalized total quality and total dynamic energy — plus per-job
//! counters, and optionally a full execution [`trace`] for the §V-G
//! real-system replay.

pub mod engine;
pub mod report;
pub mod stats;
pub mod trace;
pub mod validate;

pub use engine::{demand_met, SimConfig, Simulator};
pub use qes_multicore::TriggerRequest as TriggerConfig;
pub use report::{SimCounters, SimReport};
pub use stats::{DetailedStats, JobOutcome};
pub use trace::{SimTrace, TraceSlice};
pub use validate::{validate_trace, TraceSummary};
