//! Detailed per-job and per-core statistics.
//!
//! The paper's two headline metrics (total quality, total energy) hide a
//! lot of structure an operator cares about: how per-job quality is
//! distributed, how long requests actually took, and how evenly the cores
//! were used. [`DetailedStats`] collects those from per-job outcomes the
//! engine records when asked.

use qes_core::job::JobId;
use qes_core::time::SimTime;

/// The final outcome of one job.
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Release time.
    pub release: SimTime,
    /// When the job's quality was settled (completion, deadline, discard
    /// or horizon).
    pub settled: SimTime,
    /// Volume processed over its lifetime.
    pub processed: f64,
    /// Full service demand.
    pub demand: f64,
    /// Quality earned.
    pub quality: f64,
}

impl JobOutcome {
    /// Response time: settle instant minus release.
    pub fn response_secs(&self) -> f64 {
        self.settled.saturating_since(self.release).as_secs_f64()
    }

    /// Fraction of the demand that was processed.
    pub fn completion(&self) -> f64 {
        if self.demand > 0.0 {
            (self.processed / self.demand).min(1.0)
        } else {
            1.0
        }
    }
}

/// Aggregated distributional statistics over a simulation.
#[derive(Clone, Debug, Default)]
pub struct DetailedStats {
    outcomes: Vec<JobOutcome>,
    busy_us: Vec<u64>,
    horizon: SimTime,
}

impl DetailedStats {
    /// Create with the core count and horizon known up front.
    pub fn new(num_cores: usize, horizon: SimTime) -> Self {
        DetailedStats {
            outcomes: Vec::new(),
            busy_us: vec![0; num_cores],
            horizon,
        }
    }

    /// Record one settled job.
    pub fn record(&mut self, o: JobOutcome) {
        self.outcomes.push(o);
    }

    /// Account busy time on a core.
    pub fn add_busy(&mut self, core: usize, us: u64) {
        if let Some(b) = self.busy_us.get_mut(core) {
            *b += us;
        }
    }

    /// All job outcomes, in settle order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Per-core utilization (busy fraction of the horizon).
    pub fn core_utilization(&self) -> Vec<f64> {
        let h = self.horizon.as_micros().max(1) as f64;
        self.busy_us.iter().map(|&b| b as f64 / h).collect()
    }

    /// Largest minus smallest core utilization — the imbalance C-RR is
    /// supposed to keep small.
    pub fn utilization_spread(&self) -> f64 {
        let u = self.core_utilization();
        let lo = u.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = u.iter().cloned().fold(0.0, f64::max);
        if lo.is_finite() {
            hi - lo
        } else {
            0.0
        }
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) of per-job quality, by linear
    /// interpolation; `None` with no jobs.
    pub fn quality_quantile(&self, p: f64) -> Option<f64> {
        quantile(self.outcomes.iter().map(|o| o.quality), p)
    }

    /// The `p`-quantile of per-job completion fraction.
    pub fn completion_quantile(&self, p: f64) -> Option<f64> {
        quantile(self.outcomes.iter().map(|o| o.completion()), p)
    }

    /// The `p`-quantile of response time in seconds.
    pub fn response_quantile(&self, p: f64) -> Option<f64> {
        quantile(self.outcomes.iter().map(|o| o.response_secs()), p)
    }

    /// Mean per-job quality.
    pub fn mean_quality(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.quality).sum::<f64>() / self.outcomes.len() as f64
    }
}

fn quantile(values: impl Iterator<Item = f64>, p: f64) -> Option<f64> {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] + frac * (v[hi] - v[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(q: f64, done: f64, demand: f64, resp_ms: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(0),
            release: SimTime::ZERO,
            settled: SimTime::from_millis(resp_ms),
            processed: done,
            demand,
            quality: q,
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = DetailedStats::new(2, SimTime::from_secs(1));
        for &(q, r) in &[(0.1, 10u64), (0.5, 20), (0.9, 30)] {
            s.record(outcome(q, 50.0, 100.0, r));
        }
        assert!((s.quality_quantile(0.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((s.quality_quantile(0.5).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.quality_quantile(1.0).unwrap() - 0.9).abs() < 1e-12);
        assert!((s.quality_quantile(0.25).unwrap() - 0.3).abs() < 1e-12);
        assert!((s.response_quantile(0.5).unwrap() - 0.020).abs() < 1e-9);
        assert!((s.mean_quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = DetailedStats::new(2, SimTime::from_secs(1));
        assert!(s.quality_quantile(0.5).is_none());
        assert_eq!(s.mean_quality(), 0.0);
        assert_eq!(s.utilization_spread(), 0.0);
        assert_eq!(s.core_utilization(), vec![0.0, 0.0]);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = DetailedStats::new(2, SimTime::from_secs(1));
        s.add_busy(0, 500_000); // 0.5 s
        s.add_busy(1, 250_000);
        s.add_busy(9, 1); // out of range: ignored
        let u = s.core_utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
        assert!((s.utilization_spread() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn completion_and_response() {
        let o = outcome(0.4, 75.0, 100.0, 120);
        assert!((o.completion() - 0.75).abs() < 1e-12);
        assert!((o.response_secs() - 0.12).abs() < 1e-12);
        // Zero-demand job counts as complete.
        let z = outcome(0.0, 0.0, 0.0, 1);
        assert_eq!(z.completion(), 1.0);
    }
}
