//! Detailed per-job and per-core statistics.
//!
//! The paper's two headline metrics (total quality, total energy) hide a
//! lot of structure an operator cares about: how per-job quality is
//! distributed, how long requests actually took, and how evenly the cores
//! were used. [`DetailedStats`] collects those from per-job outcomes the
//! engine records when asked.

use qes_core::job::JobId;
use qes_core::time::SimTime;

/// The final outcome of one job.
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    /// Which job.
    pub id: JobId,
    /// Release time.
    pub release: SimTime,
    /// When the job's quality was settled (completion, deadline, discard
    /// or horizon).
    pub settled: SimTime,
    /// Volume processed over its lifetime.
    pub processed: f64,
    /// Full service demand.
    pub demand: f64,
    /// Quality earned.
    pub quality: f64,
}

impl JobOutcome {
    /// Response time: settle instant minus release.
    pub fn response_secs(&self) -> f64 {
        self.settled.saturating_since(self.release).as_secs_f64()
    }

    /// Fraction of the demand that was processed.
    pub fn completion(&self) -> f64 {
        if self.demand > 0.0 {
            (self.processed / self.demand).min(1.0)
        } else {
            1.0
        }
    }
}

/// Aggregated distributional statistics over a simulation.
#[derive(Clone, Debug, Default)]
pub struct DetailedStats {
    outcomes: Vec<JobOutcome>,
    busy_us: Vec<u64>,
    horizon: SimTime,
}

impl DetailedStats {
    /// Create with the core count and horizon known up front.
    pub fn new(num_cores: usize, horizon: SimTime) -> Self {
        DetailedStats {
            outcomes: Vec::new(),
            busy_us: vec![0; num_cores],
            horizon,
        }
    }

    /// Record one settled job.
    pub fn record(&mut self, o: JobOutcome) {
        self.outcomes.push(o);
    }

    /// Account busy time on a core.
    pub fn add_busy(&mut self, core: usize, us: u64) {
        if let Some(b) = self.busy_us.get_mut(core) {
            *b += us;
        }
    }

    /// All job outcomes, in settle order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Per-core utilization (busy fraction of the horizon).
    pub fn core_utilization(&self) -> Vec<f64> {
        let h = self.horizon.as_micros().max(1) as f64;
        self.busy_us.iter().map(|&b| b as f64 / h).collect()
    }

    /// Largest minus smallest core utilization — the imbalance C-RR is
    /// supposed to keep small.
    pub fn utilization_spread(&self) -> f64 {
        let u = self.core_utilization();
        let lo = u.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = u.iter().cloned().fold(0.0, f64::max);
        if lo.is_finite() {
            hi - lo
        } else {
            0.0
        }
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) of per-job quality, by linear
    /// interpolation; `None` with no jobs.
    pub fn quality_quantile(&self, p: f64) -> Option<f64> {
        self.quality_quantiles(&[p]).map(|v| v[0])
    }

    /// The `p`-quantile of per-job completion fraction.
    pub fn completion_quantile(&self, p: f64) -> Option<f64> {
        self.completion_quantiles(&[p]).map(|v| v[0])
    }

    /// The `p`-quantile of response time in seconds.
    pub fn response_quantile(&self, p: f64) -> Option<f64> {
        self.response_quantiles(&[p]).map(|v| v[0])
    }

    /// All requested quantiles of per-job quality from **one** sort of
    /// the outcomes (the single-quantile getters re-sort per call);
    /// `None` with no jobs.
    pub fn quality_quantiles(&self, ps: &[f64]) -> Option<Vec<f64>> {
        quantiles(self.outcomes.iter().map(|o| o.quality), ps)
    }

    /// All requested quantiles of per-job completion fraction, sorting
    /// once.
    pub fn completion_quantiles(&self, ps: &[f64]) -> Option<Vec<f64>> {
        quantiles(self.outcomes.iter().map(|o| o.completion()), ps)
    }

    /// All requested quantiles of response time in seconds, sorting
    /// once.
    pub fn response_quantiles(&self, ps: &[f64]) -> Option<Vec<f64>> {
        quantiles(self.outcomes.iter().map(|o| o.response_secs()), ps)
    }

    /// Mean per-job quality.
    pub fn mean_quality(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.quality).sum::<f64>() / self.outcomes.len() as f64
    }
}

/// Collect, sort once, and answer every requested quantile by linear
/// interpolation. `None` when there are no values.
fn quantiles(values: impl Iterator<Item = f64>, ps: &[f64]) -> Option<Vec<f64>> {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    Some(ps.iter().map(|&p| quantile_of_sorted(&v, p)).collect())
}

fn quantile_of_sorted(v: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    // Degenerate positions must return the sample itself, bit-for-bit.
    // Interpolating a value with itself is not the identity in f64:
    // `inf + 0.0 * (inf - inf)` is NaN and `-0.0 + 0.0 * 0.0` is `+0.0`.
    if lo == hi || frac == 0.0 || v[lo].to_bits() == v[hi].to_bits() {
        return v[lo];
    }
    v[lo] + frac * (v[hi] - v[lo])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(q: f64, done: f64, demand: f64, resp_ms: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(0),
            release: SimTime::ZERO,
            settled: SimTime::from_millis(resp_ms),
            processed: done,
            demand,
            quality: q,
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = DetailedStats::new(2, SimTime::from_secs(1));
        for &(q, r) in &[(0.1, 10u64), (0.5, 20), (0.9, 30)] {
            s.record(outcome(q, 50.0, 100.0, r));
        }
        assert!((s.quality_quantile(0.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((s.quality_quantile(0.5).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.quality_quantile(1.0).unwrap() - 0.9).abs() < 1e-12);
        assert!((s.quality_quantile(0.25).unwrap() - 0.3).abs() < 1e-12);
        assert!((s.response_quantile(0.5).unwrap() - 0.020).abs() < 1e-9);
        assert!((s.mean_quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_quantile_matches_single_calls() {
        let mut s = DetailedStats::new(2, SimTime::from_secs(1));
        for &(q, done, r) in &[
            (0.1, 30.0, 10u64),
            (0.5, 60.0, 20),
            (0.9, 90.0, 30),
            (0.3, 40.0, 40),
            (0.7, 80.0, 50),
        ] {
            s.record(outcome(q, done, 100.0, r));
        }
        let ps = [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0];
        let many = s.quality_quantiles(&ps).unwrap();
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(many[i], s.quality_quantile(p).unwrap(), "p = {p}");
        }
        let comp = s.completion_quantiles(&ps).unwrap();
        let resp = s.response_quantiles(&ps).unwrap();
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(comp[i], s.completion_quantile(p).unwrap());
            assert_eq!(resp[i], s.response_quantile(p).unwrap());
        }
        // Quantiles of a sorted-once vector are monotone in p.
        assert!(many.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.quality_quantiles(&[]).unwrap().is_empty());
    }

    #[test]
    fn degenerate_populations_return_the_sample_bitwise() {
        // n = 1: every quantile is the sample, not an interpolation.
        for &x in &[0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            for &p in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let q = quantile_of_sorted(&[x], p);
                assert_eq!(q.to_bits(), x.to_bits(), "n=1, x={x}, p={p}");
            }
        }
        // All-equal populations, including ones where naive interpolation
        // would produce NaN (inf - inf) or flip the sign of zero.
        for &x in &[f64::INFINITY, f64::NEG_INFINITY, -0.0, 7.25] {
            let v = [x; 5];
            for &p in &[0.0, 0.1, 0.37, 0.5, 0.99, 1.0] {
                let q = quantile_of_sorted(&v, p);
                assert_eq!(q.to_bits(), x.to_bits(), "all-equal x={x}, p={p}");
            }
        }
        // Duplicated values: a quantile landing between two equal
        // neighbours returns that value exactly.
        let v = [1.0, 2.0, 2.0, 3.0];
        let q = quantile_of_sorted(&v, 0.5); // pos = 1.5, between the 2.0s
        assert_eq!(q.to_bits(), 2.0f64.to_bits());
    }

    #[test]
    fn single_sample_stats_match_multi_quantile() {
        let mut s = DetailedStats::new(1, SimTime::from_secs(1));
        s.record(outcome(0.42, 50.0, 100.0, 17));
        let ps = [0.0, 0.25, 0.5, 0.75, 1.0];
        let many = s.quality_quantiles(&ps).unwrap();
        for (i, &p) in ps.iter().enumerate() {
            let one = s.quality_quantile(p).unwrap();
            assert_eq!(many[i].to_bits(), one.to_bits(), "p = {p}");
            assert_eq!(one.to_bits(), 0.42f64.to_bits());
        }
        // All-equal population through the public API.
        let mut t = DetailedStats::new(1, SimTime::from_secs(1));
        for r in [5u64, 9, 13] {
            t.record(outcome(0.9, 100.0, 100.0, r));
        }
        for &p in &ps {
            let q = t.quality_quantile(p).unwrap();
            assert_eq!(q.to_bits(), 0.9f64.to_bits(), "all-equal p = {p}");
            let c = t.completion_quantile(p).unwrap();
            assert_eq!(c.to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn empty_stats_are_well_defined() {
        let s = DetailedStats::new(2, SimTime::from_secs(1));
        assert!(s.quality_quantile(0.5).is_none());
        assert_eq!(s.mean_quality(), 0.0);
        assert_eq!(s.utilization_spread(), 0.0);
        assert_eq!(s.core_utilization(), vec![0.0, 0.0]);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = DetailedStats::new(2, SimTime::from_secs(1));
        s.add_busy(0, 500_000); // 0.5 s
        s.add_busy(1, 250_000);
        s.add_busy(9, 1); // out of range: ignored
        let u = s.core_utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.25).abs() < 1e-12);
        assert!((s.utilization_spread() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn completion_and_response() {
        let o = outcome(0.4, 75.0, 100.0, 120);
        assert!((o.completion() - 0.75).abs() < 1e-12);
        assert!((o.response_secs() - 0.12).abs() < 1e-12);
        // Zero-demand job counts as complete.
        let z = outcome(0.0, 0.0, 0.0, 1);
        assert_eq!(z.completion(), 1.0);
    }
}
