//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use qes_core::job::{Job, JobId, JobSet};
use qes_core::power::PowerModel;
use qes_core::quality::QualityFunction;
use qes_core::rate_units_per_us;
use qes_core::schedule::Slice;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::{CoreView, SchedulingPolicy, SystemView};
use qes_singlecore::online_qe::ReadyJob;

use crate::report::SimReport;
use crate::stats::{DetailedStats, JobOutcome};
use crate::trace::{SimTrace, TraceSlice};

/// Configuration of one simulation run.
pub struct SimConfig<'a> {
    /// Number of cores `m`.
    pub num_cores: usize,
    /// Total dynamic power budget `H` (W).
    pub budget: f64,
    /// Per-core power model.
    pub model: &'a dyn PowerModel,
    /// Quality function shared by every job (§II-A).
    pub quality: &'a dyn QualityFunction,
    /// Simulation horizon; arrivals beyond it are ignored and all jobs are
    /// settled here at the latest.
    pub end: SimTime,
    /// Record every executed slice (needed for §V-G trace replay).
    pub record_trace: bool,
    /// Scheduling overhead charged per policy invocation: installed plans
    /// only take effect this long after the trigger (the cores finish
    /// whatever they were doing, then idle through the stall). Zero by
    /// default; used by the §IV-E grouped-vs-immediate scheduling study.
    pub overhead: SimDuration,
}

/// The simulator. Construct one per run via [`Simulator::run`].
pub struct Simulator;

impl Simulator {
    /// Simulate `policy` over `jobs`, returning the aggregate report and
    /// (if requested) the execution trace.
    pub fn run(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
    ) -> (SimReport, SimTrace) {
        let (report, trace, _) = Self::run_detailed(cfg, policy, jobs);
        (report, trace)
    }

    /// [`Simulator::run`] plus per-job outcomes and per-core utilization.
    pub fn run_detailed(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
    ) -> (SimReport, SimTrace, DetailedStats) {
        Engine::new(cfg, jobs).run(policy)
    }
}

/// Event kinds, in same-instant processing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A job's deadline passed: settle its quality.
    Deadline(JobId),
    /// A job arrives (index into the release-sorted job list).
    Arrival(u32),
    /// A core's plan ran out (stale if the version moved on).
    PlanEnd { core: u32, version: u64 },
    /// Periodic quantum tick.
    Quantum,
}

type Event = (SimTime, u8, u64, EventKind);

struct CoreState {
    jobs: Vec<ReadyJob>,
    plan: VecDeque<Slice>,
    version: u64,
    ambient: f64,
    advanced_to: SimTime,
}

struct Engine<'a> {
    cfg: &'a SimConfig<'a>,
    all_jobs: Vec<Job>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    queue: Vec<ReadyJob>,
    cores: Vec<CoreState>,
    settled: HashSet<JobId>,
    trace: SimTrace,
    report: SimReport,
    stats: DetailedStats,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig<'a>, jobs: &JobSet) -> Self {
        let all_jobs: Vec<Job> = jobs.iter().copied().collect();
        let mut eng = Engine {
            cfg,
            all_jobs,
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            queue: Vec::new(),
            cores: (0..cfg.num_cores)
                .map(|_| CoreState {
                    jobs: Vec::new(),
                    plan: VecDeque::new(),
                    version: 0,
                    ambient: 0.0,
                    advanced_to: SimTime::ZERO,
                })
                .collect(),
            settled: HashSet::new(),
            trace: SimTrace::default(),
            report: SimReport {
                sim_seconds: cfg.end.as_secs_f64(),
                ..SimReport::default()
            },
            stats: DetailedStats::new(cfg.num_cores, cfg.end),
        };
        let initial: Vec<(usize, Job)> = eng
            .all_jobs
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, j)| j.release <= cfg.end)
            .collect();
        for (i, j) in initial {
            eng.push_event(j.release, EventKind::Arrival(i as u32));
            // Deadlines may fall past the arrival cutoff: the engine
            // drains in-flight jobs so late arrivals are not unfairly
            // truncated (their windows extend ≤ one relative deadline
            // beyond `end`).
            eng.push_event(j.deadline, EventKind::Deadline(j.id));
        }
        eng
    }

    fn push_event(&mut self, t: SimTime, kind: EventKind) {
        let prio = match kind {
            EventKind::Deadline(_) => 0,
            EventKind::Arrival(_) => 1,
            EventKind::PlanEnd { .. } => 2,
            EventKind::Quantum => 3,
        };
        self.seq += 1;
        self.events.push(Reverse((t, prio, self.seq, kind)));
    }

    fn run(mut self, policy: &mut dyn SchedulingPolicy) -> (SimReport, SimTrace, DetailedStats) {
        self.report.policy = policy.name();
        let trig = policy.triggers();
        if let Some(q) = trig.quantum {
            if !q.is_zero() {
                self.push_event(SimTime::ZERO + q, EventKind::Quantum);
            }
        }
        // Arrivals stop at `end`; the loop then drains until every job is
        // settled (quantum ticks stop rescheduling past `end`, so the heap
        // empties within one relative deadline).
        while let Some(Reverse((t, _, _, kind))) = self.events.pop() {
            self.now = t;
            match kind {
                EventKind::Arrival(i) => {
                    let mut batch = vec![i];
                    // Batch all arrivals at the same instant so the policy
                    // sees them together (a lone trigger between two
                    // simultaneous arrivals is a simulation artifact).
                    while let Some(Reverse((bt, _, _, EventKind::Arrival(j)))) = self.events.peek()
                    {
                        if *bt != t {
                            break;
                        }
                        batch.push(*j);
                        self.events.pop();
                    }
                    for i in batch {
                        let job = self.all_jobs[i as usize];
                        self.queue.push(ReadyJob::fresh(job));
                        self.report.jobs_total += 1;
                        self.report.max_quality += self.cfg.quality.max_job_quality(&job);
                    }
                    let counter_hit = trig.counter.is_some_and(|c| self.queue.len() >= c);
                    // The idle-core trigger (§IV-E) also covers a job
                    // arriving while a core sits idle — "an idle core
                    // triggers the scheduler to start assigning more jobs".
                    let idle_hit = trig.on_idle && self.any_core_idle();
                    if trig.on_arrival || counter_hit || idle_hit {
                        self.invoke(policy);
                    }
                }
                EventKind::Deadline(id) => {
                    if !self.settled.contains(&id) {
                        if let Some(core) = self.core_of(id) {
                            self.advance_core(core, t);
                        }
                        self.settle(id);
                    }
                }
                EventKind::PlanEnd { core, version } => {
                    let core = core as usize;
                    if self.cores[core].version == version {
                        self.advance_core(core, t);
                        if trig.on_idle {
                            self.invoke(policy);
                        }
                    }
                }
                EventKind::Quantum => {
                    self.invoke(policy);
                    if let Some(q) = trig.quantum {
                        let next = t + q;
                        if next <= self.cfg.end {
                            self.push_event(next, EventKind::Quantum);
                        }
                    }
                }
            }
        }
        // Horizon reached: integrate the tail and settle everything left.
        let final_t = self.now.max(self.cfg.end);
        self.now = final_t;
        for c in 0..self.cores.len() {
            self.advance_core(c, final_t);
        }
        let leftovers: Vec<JobId> = self
            .queue
            .iter()
            .map(|r| r.job.id)
            .chain(
                self.cores
                    .iter()
                    .flat_map(|c| c.jobs.iter().map(|r| r.job.id)),
            )
            .collect();
        for id in leftovers {
            if !self.settled.contains(&id) {
                self.settle(id);
            }
        }
        (self.report, self.trace, self.stats)
    }

    /// True if some core has no planned work left at the current instant.
    fn any_core_idle(&self) -> bool {
        self.cores
            .iter()
            .any(|c| c.plan.iter().all(|s| s.end <= self.now))
    }

    /// Which core holds `id`, if any.
    fn core_of(&self, id: JobId) -> Option<usize> {
        self.cores
            .iter()
            .position(|c| c.jobs.iter().any(|r| r.job.id == id))
    }

    /// Record a job's final quality and drop it from the live structures.
    fn settle(&mut self, id: JobId) {
        let found = if let Some(pos) = self.queue.iter().position(|r| r.job.id == id) {
            Some(self.queue.swap_remove(pos))
        } else {
            self.cores.iter_mut().find_map(|c| {
                c.jobs
                    .iter()
                    .position(|r| r.job.id == id)
                    .map(|pos| c.jobs.swap_remove(pos))
            })
        };
        // Unknown id (e.g. double discard): nothing to settle.
        let Some(r) = found else { return };
        let quality = self.cfg.quality.job_quality(&r.job, r.processed);
        self.report.total_quality += quality;
        if r.job.demand <= 1e-12 || r.processed + 1e-3 >= r.job.demand {
            self.report.jobs_satisfied += 1;
        } else if r.processed > 1e-9 {
            self.report.jobs_partial += 1;
        } else {
            self.report.jobs_zero += 1;
        }
        self.stats.record(JobOutcome {
            id,
            release: r.job.release,
            settled: self.now,
            processed: r.processed,
            demand: r.job.demand,
            quality,
        });
        self.settled.insert(id);
    }

    /// Integrate core `c`'s plan (progress, energy, trace, completions)
    /// from its last advance point to `t`.
    fn advance_core(&mut self, c: usize, t: SimTime) {
        let model = self.cfg.model;
        let record_trace = self.cfg.record_trace;
        let core = &mut self.cores[c];
        if t <= core.advanced_to {
            return;
        }
        let mut completions: Vec<JobId> = Vec::new();
        while let Some(front) = core.plan.front_mut() {
            if front.start >= t {
                break;
            }
            let seg_start = front.start.max(core.advanced_to);
            // Ambient draw over the idle gap before the slice.
            let gap = seg_start.saturating_since(core.advanced_to);
            if !gap.is_zero() && core.ambient > 0.0 {
                self.report.energy_joules += model.dynamic_energy(core.ambient, gap.as_secs_f64());
            }
            let seg_end = front.end.min(t);
            let dur = seg_end.saturating_since(seg_start);
            if !dur.is_zero() {
                self.stats.add_busy(c, dur.as_micros());
                self.report.energy_joules += model.dynamic_energy(front.speed, dur.as_secs_f64());
                let vol = rate_units_per_us(front.speed) * dur.as_micros() as f64;
                if let Some(r) = core.jobs.iter_mut().find(|r| r.job.id == front.job) {
                    r.processed += vol;
                    if r.processed + 1e-3 >= r.job.demand {
                        completions.push(r.job.id);
                    }
                }
                if record_trace {
                    self.trace.push(TraceSlice {
                        core: c,
                        job: front.job,
                        start: seg_start,
                        end: seg_end,
                        speed: front.speed,
                    });
                }
            }
            if front.end <= t {
                core.advanced_to = front.end;
                core.plan.pop_front();
            } else {
                front.start = t;
                core.advanced_to = t;
                break;
            }
        }
        // Trailing idle stretch up to `t`.
        let gap = t.saturating_since(core.advanced_to);
        if !gap.is_zero() && core.ambient > 0.0 {
            self.report.energy_joules += model.dynamic_energy(core.ambient, gap.as_secs_f64());
        }
        core.advanced_to = t;
        for id in completions {
            self.settle(id);
        }
    }

    /// Invoke the policy and apply its decision.
    fn invoke(&mut self, policy: &mut dyn SchedulingPolicy) {
        let now = self.now;
        for c in 0..self.cores.len() {
            self.advance_core(c, now);
        }
        let views: Vec<CoreView> = self
            .cores
            .iter()
            .map(|c| CoreView {
                jobs: c.jobs.clone(),
                busy: !c.plan.is_empty(),
            })
            .collect();
        let decision = {
            let view = SystemView {
                now,
                queue: &self.queue,
                cores: &views,
                budget: self.cfg.budget,
                model: self.cfg.model,
            };
            policy.on_trigger(&view)
        };
        self.report.invocations += 1;

        // Move assigned jobs from the queue onto their cores.
        for (id, core) in decision.assignments {
            if core >= self.cores.len() {
                debug_assert!(false, "assignment to nonexistent core {core}");
                continue;
            }
            if let Some(pos) = self.queue.iter().position(|r| r.job.id == id) {
                let r = self.queue.remove(pos);
                self.cores[core].jobs.push(r);
            }
        }

        // Abandon discarded jobs (settled with whatever volume they have).
        for id in decision.discarded {
            if !self.settled.contains(&id) {
                self.settle(id);
                self.report.jobs_discarded += 1;
            }
        }

        // Install replacement plans. With a nonzero scheduling overhead,
        // the new plan only takes effect after the stall: slices are
        // clipped to start at `now + overhead` (work the stall displaces
        // is lost, exactly the §IV-E cost of invoking too often).
        let effective = now + self.cfg.overhead;
        for (c, plan) in decision.plans.into_iter().enumerate() {
            if c >= self.cores.len() {
                break;
            }
            let Some(plan) = plan else { continue };
            let core = &mut self.cores[c];
            core.version += 1;
            core.plan = plan
                .slices()
                .iter()
                .filter(|s| s.end > effective)
                .map(|s| Slice {
                    start: s.start.max(effective),
                    ..*s
                })
                .collect();
            if let Some(end) = core.plan.back().map(|s| s.end) {
                let version = core.version;
                if end > now {
                    self.push_event(
                        end,
                        EventKind::PlanEnd {
                            core: c as u32,
                            version,
                        },
                    );
                }
            }
        }

        // Ambient speeds for the inter-invocation window.
        if decision.ambient_speeds.len() == self.cores.len() {
            for (core, &s) in self.cores.iter_mut().zip(&decision.ambient_speeds) {
                core.ambient = s;
            }
        } else if decision.ambient_speeds.is_empty() {
            // Leave ambient as-is for policies that keep plans (None) and
            // don't manage ambient draw; zero is the initial state.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;
    use qes_core::quality::ExpQuality;
    use qes_multicore::{BaselineOrder, BaselinePolicy, DesPolicy, PolicyDecision, TriggerRequest};

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
    const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn cfg(end_ms: u64, cores: usize, budget: f64) -> SimConfig<'static> {
        SimConfig {
            num_cores: cores,
            budget,
            model: &MODEL,
            quality: &Q,
            end: ms(end_ms),
            record_trace: true,
            overhead: SimDuration::ZERO,
        }
    }

    fn job(id: u32, r: u64, d: u64, w: f64) -> Job {
        Job::new(id, ms(r), ms(d), w).unwrap()
    }

    #[test]
    fn single_light_job_completes_under_des() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 100.0)]).unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total, 1);
        assert_eq!(report.jobs_satisfied, 1);
        assert!((report.normalized_quality() - 1.0).abs() < 1e-6);
        assert!(report.energy_joules > 0.0);
        assert!((trace.total_volume() - 100.0).abs() < 0.1);
    }

    #[test]
    fn overload_yields_partial_quality() {
        // One core, 5 W (1 GHz), two 200-unit jobs in a 100 ms window:
        // capacity 100 units → each gets ~50.
        let jobs = JobSet::new(vec![job(0, 0, 100, 200.0), job(1, 0, 100, 200.0)]).unwrap();
        let c = cfg(500, 1, 5.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total, 2);
        assert_eq!(report.jobs_satisfied, 0);
        assert_eq!(report.jobs_partial, 2);
        assert!((trace.total_volume() - 100.0).abs() < 1.0);
        let expect = 2.0 * Q.value(50.0) / (2.0 * Q.value(200.0));
        assert!((report.normalized_quality() - expect).abs() < 0.02);
    }

    #[test]
    fn energy_matches_trace_for_gating_policies() {
        let jobs = JobSet::new(vec![
            job(0, 0, 150, 120.0),
            job(1, 40, 190, 80.0),
            job(2, 90, 240, 150.0),
        ])
        .unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        // C-DVFS has zero ambient draw: report energy == trace energy.
        assert!((report.energy_joules - trace.dynamic_energy(&MODEL)).abs() < 1e-6);
    }

    #[test]
    fn no_dvfs_burns_ambient_power() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 100.0)]).unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::on_arch(qes_multicore::ArchKind::NoDvfs);
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        // Ambient draw makes total energy exceed the executed slices'.
        assert!(report.energy_joules > trace.dynamic_energy(&MODEL) + 1.0);
        // From the first invocation (t=0 arrival is not a DES trigger; the
        // counter is 8, so the first trigger is... the idle/quantum path).
        // Regardless: by t=1 s both cores have burned ≈ 20 W each for most
        // of the second.
        assert!(report.energy_joules < 40.0 * 1.0 + 1e-6);
    }

    #[test]
    fn fcfs_runs_jobs_one_at_a_time() {
        let jobs = JobSet::new(vec![
            job(0, 0, 150, 100.0),
            job(1, 0, 150, 100.0),
            job(2, 0, 150, 100.0),
        ])
        .unwrap();
        let c = cfg(1000, 1, 20.0);
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // 1 core at ≤2 GHz, 150 ms: at most 300 units — two jobs max, and
        // FCFS runs at the slowest finishing speed, so job 0 takes
        // 150 ms at 2/3 GHz... then jobs 1,2 expire: exactly 1 satisfied.
        assert_eq!(report.jobs_total, 3);
        assert_eq!(report.jobs_satisfied, 1);
        assert_eq!(report.jobs_zero, 2);
    }

    #[test]
    fn deadline_settles_waiting_jobs_with_zero_quality() {
        // A policy that never assigns anything.
        struct Lazy;
        impl SchedulingPolicy for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn triggers(&self) -> TriggerRequest {
                TriggerRequest {
                    quantum: None,
                    counter: None,
                    on_idle: false,
                    on_arrival: false,
                }
            }
            fn on_trigger(&mut self, v: &SystemView<'_>) -> PolicyDecision {
                PolicyDecision::keep_all(v.num_cores())
            }
        }
        let jobs = JobSet::new(vec![job(0, 0, 100, 50.0)]).unwrap();
        let c = cfg(500, 1, 20.0);
        let (report, _) = Simulator::run(&c, &mut Lazy, &jobs);
        assert_eq!(report.jobs_total, 1);
        assert_eq!(report.jobs_zero, 1);
        assert_eq!(report.total_quality, 0.0);
        assert_eq!(report.energy_joules, 0.0);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 50.0), job(1, 2000, 2150, 50.0)]).unwrap();
        let c = cfg(1000, 1, 20.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total, 1);
    }

    #[test]
    fn horizon_settles_in_flight_jobs() {
        // Deadline beyond the horizon: settled at the horizon with partial
        // progress.
        let jobs = JobSet::new(vec![job(0, 0, 5000, 2000.0)]).unwrap();
        let c = cfg(1000, 1, 20.0); // 2 GHz max → ≤ 2000 units in 1 s
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total, 1);
        assert_eq!(report.jobs_satisfied + report.jobs_partial, 1);
        assert!(report.total_quality > 0.0);
    }

    #[test]
    fn quantum_trigger_fires_repeatedly() {
        let jobs = JobSet::new(vec![job(0, 0, 900, 10.0)]).unwrap();
        let c = cfg(2000, 1, 20.0);
        let mut p = DesPolicy::new(); // 500 ms quantum
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // Quantum fires at 500/1000/1500/2000 ms; idle triggers add more.
        assert!(report.invocations >= 4, "{}", report.invocations);
        assert_eq!(report.jobs_satisfied, 1);
    }

    #[test]
    fn counter_trigger_batches_arrivals() {
        // Jobs 0–3 occupy the 4 cores (idle triggers); jobs 4–11 arrive
        // while every core is busy, so nothing but the counter (8) can
        // fire before their deadlines — and it must, on the 8th waiter.
        let mut v: Vec<Job> = (0..4).map(|i| job(i, 0, 150, 10.0)).collect();
        v.extend((4..12).map(|i| job(i, 10 + (i as u64 - 4), 300, 10.0)));
        let jobs = JobSet::new(v).unwrap();
        let c = cfg(1000, 4, 40.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_satisfied, 12);
        assert!(report.invocations >= 2);
    }

    #[test]
    fn energy_never_exceeds_budget_times_time() {
        let jobs = JobSet::new(
            (0..40)
                .map(|i| job(i, (i as u64) * 5, (i as u64) * 5 + 150, 300.0))
                .collect(),
        )
        .unwrap();
        let c = cfg(1000, 4, 40.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert!(report.energy_joules <= 40.0 * 1.0 + 1e-6);
    }

    #[test]
    fn non_partial_jobs_all_or_nothing() {
        // Overloaded core with non-partial jobs: quality comes only from
        // fully finished ones.
        let mut j0 = job(0, 0, 100, 150.0);
        let mut j1 = job(1, 0, 100, 150.0);
        j0.partial = false;
        j1.partial = false;
        let jobs = JobSet::new(vec![j0, j1]).unwrap();
        let c = cfg(500, 1, 5.0); // 1 GHz → 100 units capacity
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // Neither can finish 150 units in 100 ms at 1 GHz… so both end up
        // discarded or zero; quality 0.
        assert_eq!(report.jobs_satisfied, 0);
        assert_eq!(report.total_quality, 0.0);
    }
}
