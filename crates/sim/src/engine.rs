//! The discrete-event simulation engine.
//!
//! # Per-event complexity
//!
//! The engine tracks every live job's location in a `JobId → Loc` index,
//! so settling, assignment and completion checks are O(1) instead of
//! scans over the queue and every core. Queue removals tombstone in
//! place (the queue compacts lazily before each policy invocation,
//! preserving arrival order), core removals `swap_remove` and re-index
//! the displaced job. Arrivals are not pre-pushed onto the event heap:
//! the release-sorted job list is merged with the heap through a cursor,
//! and a job's deadline event is only scheduled when it actually
//! arrives, keeping the heap proportional to the in-flight window rather
//! than the whole trace.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use qes_core::job::{Job, JobId, JobSet};
use qes_core::obs::{
    DequeueKind, Event as ObsEvent, NoopObserver, Observer, SettleOutcome, TriggerCause,
};
use qes_core::power::PowerModel;
use qes_core::quality::QualityFunction;
use qes_core::rate_units_per_us;
use qes_core::schedule::Slice;
use qes_core::time::{SimDuration, SimTime};
use qes_multicore::{CoreView, SchedulingPolicy, SystemView};
use qes_singlecore::online_qe::ReadyJob;

use crate::report::SimReport;
use crate::stats::{DetailedStats, JobOutcome};
use crate::trace::{SimTrace, TraceSlice};

/// Configuration of one simulation run.
pub struct SimConfig<'a> {
    /// Number of cores `m`.
    pub num_cores: usize,
    /// Total dynamic power budget `H` (W).
    pub budget: f64,
    /// Per-core power model.
    pub model: &'a dyn PowerModel,
    /// Quality function shared by every job (§II-A).
    pub quality: &'a dyn QualityFunction,
    /// Simulation horizon; arrivals beyond it are ignored and all jobs are
    /// settled here at the latest.
    pub end: SimTime,
    /// Record every executed slice (needed for §V-G trace replay).
    pub record_trace: bool,
    /// Scheduling overhead charged per policy invocation: installed plans
    /// only take effect this long after the trigger (the cores finish
    /// whatever they were doing, then idle through the stall). Zero by
    /// default; used by the §IV-E grouped-vs-immediate scheduling study.
    pub overhead: SimDuration,
}

/// The simulator. Construct one per run via [`Simulator::run`].
pub struct Simulator;

impl Simulator {
    /// Simulate `policy` over `jobs`, returning the aggregate report and
    /// (if requested) the execution trace.
    pub fn run(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
    ) -> (SimReport, SimTrace) {
        Self::run_observed(cfg, policy, jobs, &mut NoopObserver)
    }

    /// [`Simulator::run`] with an [`Observer`] receiving the event stream
    /// (`qes_core::obs`). Observers are passive: the run's outcome is
    /// bitwise-identical with any observer, including none.
    pub fn run_observed<O: Observer>(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
        obs: &mut O,
    ) -> (SimReport, SimTrace) {
        let (report, trace, _) = Self::run_detailed_observed(cfg, policy, jobs, obs);
        (report, trace)
    }

    /// [`Simulator::run`] plus per-job outcomes and per-core utilization.
    pub fn run_detailed(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
    ) -> (SimReport, SimTrace, DetailedStats) {
        Self::run_detailed_observed(cfg, policy, jobs, &mut NoopObserver)
    }

    /// [`Simulator::run_detailed`] with an [`Observer`].
    pub fn run_detailed_observed<O: Observer>(
        cfg: &SimConfig<'_>,
        policy: &mut dyn SchedulingPolicy,
        jobs: &JobSet,
        obs: &mut O,
    ) -> (SimReport, SimTrace, DetailedStats) {
        Engine::new(cfg, jobs, obs).run(policy)
    }
}

/// Event kinds, in same-instant processing order. Arrivals are not heap
/// events (they come from the release-sorted cursor) but occupy priority
/// 1 between deadlines and plan ends — see [`ARRIVAL_PRIO`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A job's deadline passed: settle its quality.
    Deadline(JobId),
    /// A core's plan ran out (stale if the version moved on).
    PlanEnd { core: u32, version: u64 },
    /// Periodic quantum tick.
    Quantum,
}

type Event = (SimTime, u8, u64, EventKind);

/// Same-instant priority of arrivals relative to heap events: after
/// deadlines (0), before plan ends (2) and quantum ticks (3).
const ARRIVAL_PRIO: u8 = 1;

/// Relative satisfaction tolerance: a job counts as fully processed when
/// its volume is within this fraction of its demand. Slice endpoints are
/// quantized to whole microseconds, so a plan that nominally completes a
/// job can under-deliver by up to ~half a microsecond of work; a
/// *relative* tolerance absorbs that for realistic demands without (as
/// the old absolute `1e-3`-unit epsilon did) forgiving a fixed chunk of
/// work regardless of job size.
const REL_EPS: f64 = 1e-4;

/// Whether `processed` volume satisfies `demand` under [`REL_EPS`].
///
/// Public so downstream consumers of [`JobOutcome`](crate::JobOutcome)
/// records (e.g. the cluster front end's hedging merge) can classify an
/// outcome exactly as `settle` did, instead of re-deriving the tolerance.
pub fn demand_met(processed: f64, demand: f64) -> bool {
    demand <= 1e-12 || processed >= demand * (1.0 - REL_EPS)
}

/// Where a tracked job currently lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    /// Waiting in the ready queue at this slot (may be tombstoned only
    /// by transitioning away — a live slot always matches its index).
    Queue(u32),
    /// Assigned to `core`, at `idx` in its job list.
    Core { core: u32, idx: u32 },
    /// Quality already settled; the job is gone from live structures.
    Settled,
}

struct CoreState {
    jobs: Vec<ReadyJob>,
    plan: VecDeque<Slice>,
    version: u64,
    ambient: f64,
    advanced_to: SimTime,
}

struct Engine<'a, O: Observer> {
    cfg: &'a SimConfig<'a>,
    all_jobs: Vec<Job>,
    /// Indices into `all_jobs` with `release <= end`, sorted by
    /// `(release, index)`; consumed through `next_arrival`.
    arrival_order: Vec<u32>,
    next_arrival: usize,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    /// Ready queue in arrival order. Settled/assigned entries are
    /// tombstoned via `queue_dead` and compacted before each invoke.
    queue: Vec<ReadyJob>,
    queue_dead: Vec<bool>,
    queue_holes: usize,
    cores: Vec<CoreState>,
    /// O(1) location of every job that has arrived.
    loc: HashMap<JobId, Loc>,
    trace: SimTrace,
    report: SimReport,
    stats: DetailedStats,
    /// Observability sink. Hooks are guarded by `O::ENABLED`, so with
    /// [`NoopObserver`] every hook (and the event construction feeding
    /// it) is statically dead code.
    obs: &'a mut O,
}

impl<'a, O: Observer> Engine<'a, O> {
    fn new(cfg: &'a SimConfig<'a>, jobs: &JobSet, obs: &'a mut O) -> Self {
        let all_jobs: Vec<Job> = jobs.iter().copied().collect();
        // Arrivals beyond the horizon are ignored. (Their deadlines may
        // still fall past the cutoff: the engine drains in-flight jobs so
        // late arrivals are not unfairly truncated — windows extend at
        // most one relative deadline beyond `end`.)
        let mut arrival_order: Vec<u32> = (0..all_jobs.len() as u32)
            .filter(|&i| all_jobs[i as usize].release <= cfg.end)
            .collect();
        arrival_order.sort_by_key(|&i| (all_jobs[i as usize].release, i));
        let expected_jobs = arrival_order.len();
        Engine {
            cfg,
            all_jobs,
            arrival_order,
            next_arrival: 0,
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            queue: Vec::new(),
            queue_dead: Vec::new(),
            queue_holes: 0,
            cores: (0..cfg.num_cores)
                .map(|_| CoreState {
                    jobs: Vec::new(),
                    plan: VecDeque::new(),
                    version: 0,
                    ambient: 0.0,
                    advanced_to: SimTime::ZERO,
                })
                .collect(),
            loc: HashMap::with_capacity(expected_jobs),
            trace: SimTrace::default(),
            report: SimReport {
                sim_seconds: cfg.end.as_secs_f64(),
                ..SimReport::default()
            },
            stats: DetailedStats::new(cfg.num_cores, cfg.end),
            obs,
        }
    }

    fn push_event(&mut self, t: SimTime, kind: EventKind) {
        let prio = match kind {
            EventKind::Deadline(_) => 0,
            EventKind::PlanEnd { .. } => 2,
            EventKind::Quantum => 3,
        };
        self.seq += 1;
        self.events.push(Reverse((t, prio, self.seq, kind)));
    }

    /// Release time of the next unprocessed arrival, if any.
    fn next_arrival_time(&self) -> Option<SimTime> {
        self.arrival_order
            .get(self.next_arrival)
            .map(|&i| self.all_jobs[i as usize].release)
    }

    fn run(mut self, policy: &mut dyn SchedulingPolicy) -> (SimReport, SimTrace, DetailedStats) {
        self.report.policy = policy.name();
        let trig = policy.triggers();
        if let Some(q) = trig.quantum {
            if !q.is_zero() {
                self.push_event(SimTime::ZERO + q, EventKind::Quantum);
            }
        }
        // Arrivals stop at `end`; the loop then drains until every job is
        // settled (quantum ticks stop rescheduling past `end`, so the heap
        // empties within one relative deadline). Arrivals come from the
        // release-sorted cursor, merged with the heap at priority
        // `ARRIVAL_PRIO`.
        loop {
            let take_arrival = match (self.next_arrival_time(), self.events.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(at), Some(&Reverse((ht, hp, _, _)))) => (at, ARRIVAL_PRIO) < (ht, hp),
            };
            if take_arrival {
                let t = self.next_arrival_time().expect("cursor checked above");
                self.now = t;
                // Batch all arrivals at the same instant so the policy
                // sees them together (a lone trigger between two
                // simultaneous arrivals is a simulation artifact).
                let mut batch: u32 = 0;
                while let Some(&i) = self.arrival_order.get(self.next_arrival) {
                    let job = self.all_jobs[i as usize];
                    if job.release != t {
                        break;
                    }
                    self.next_arrival += 1;
                    self.loc.insert(job.id, Loc::Queue(self.queue.len() as u32));
                    self.queue.push(ReadyJob::fresh(job));
                    self.queue_dead.push(false);
                    self.report.counters.jobs_total += 1;
                    self.report.max_quality += self.cfg.quality.max_job_quality(&job);
                    batch += 1;
                    // The deadline event is only scheduled now that the
                    // job exists — the heap never holds the whole trace.
                    self.push_event(job.deadline, EventKind::Deadline(job.id));
                }
                if O::ENABLED {
                    self.obs.record(t, ObsEvent::Arrivals { count: batch });
                }
                let live_waiting = self.queue.len() - self.queue_holes;
                let counter_hit = trig.counter.is_some_and(|c| live_waiting >= c);
                // The idle-core trigger (§IV-E) also covers a job
                // arriving while a core sits idle — "an idle core
                // triggers the scheduler to start assigning more jobs".
                let idle_hit = trig.on_idle && self.any_core_idle();
                if trig.on_arrival || counter_hit || idle_hit {
                    if O::ENABLED {
                        let cause = if trig.on_arrival {
                            TriggerCause::Arrival
                        } else if counter_hit {
                            TriggerCause::Counter
                        } else {
                            TriggerCause::Idle
                        };
                        self.obs.record(t, ObsEvent::Trigger { cause });
                    }
                    self.invoke(policy);
                }
                continue;
            }
            let Reverse((t, _, _, kind)) = self.events.pop().expect("heap checked above");
            self.now = t;
            if O::ENABLED {
                let dk = match kind {
                    EventKind::Deadline(_) => DequeueKind::Deadline,
                    EventKind::PlanEnd { .. } => DequeueKind::PlanEnd,
                    EventKind::Quantum => DequeueKind::Quantum,
                };
                self.obs.record(t, ObsEvent::Dequeue { kind: dk });
            }
            match kind {
                EventKind::Deadline(id) => match self.loc.get(&id) {
                    Some(&Loc::Core { core, .. }) => {
                        self.advance_core(core as usize, t);
                        // The job may have completed (and settled) during
                        // the advance; `settle` re-checks its location.
                        self.settle(id);
                    }
                    Some(&Loc::Queue(_)) => self.settle(id),
                    _ => {}
                },
                EventKind::PlanEnd { core, version } => {
                    let core = core as usize;
                    if self.cores[core].version == version {
                        self.advance_core(core, t);
                        // Grouped scheduling (§IV-E): with
                        // `idle_requires_work` the idle trigger only
                        // fires when there are live jobs to assign —
                        // deadline events at this instant ran first
                        // (priority 0 < 2), so every surviving queue
                        // slot is genuinely assignable.
                        let has_work = self.queue.len() > self.queue_holes;
                        if trig.on_idle && (has_work || !trig.idle_requires_work) {
                            if O::ENABLED {
                                self.obs.record(
                                    t,
                                    ObsEvent::Trigger {
                                        cause: TriggerCause::PlanEnd,
                                    },
                                );
                            }
                            self.invoke(policy);
                        }
                    }
                }
                EventKind::Quantum => {
                    if O::ENABLED {
                        self.obs.record(
                            t,
                            ObsEvent::Trigger {
                                cause: TriggerCause::Quantum,
                            },
                        );
                    }
                    self.invoke(policy);
                    if let Some(q) = trig.quantum {
                        let next = t + q;
                        if next <= self.cfg.end {
                            self.push_event(next, EventKind::Quantum);
                        }
                    }
                }
            }
        }
        // Horizon reached: integrate the tail and settle everything left.
        let final_t = self.now.max(self.cfg.end);
        self.now = final_t;
        for c in 0..self.cores.len() {
            self.advance_core(c, final_t);
        }
        let leftovers: Vec<JobId> = self
            .queue
            .iter()
            .zip(&self.queue_dead)
            .filter(|&(_, &dead)| !dead)
            .map(|(r, _)| r.job.id)
            .chain(
                self.cores
                    .iter()
                    .flat_map(|c| c.jobs.iter().map(|r| r.job.id)),
            )
            .collect();
        for id in leftovers {
            self.settle(id);
        }
        // Drain policy-internal counters into the observer, once, at the
        // final instant (a pull: policies keep plain integers, the
        // `dyn SchedulingPolicy` boundary never sees the observer type).
        if O::ENABLED {
            let obs = &mut self.obs;
            policy.metrics(&mut |name, value| {
                obs.record(final_t, ObsEvent::PolicyCounter { name, value });
            });
        }
        (self.report, self.trace, self.stats)
    }

    /// True if some core has no planned work left at the current instant.
    /// Slices within a plan are time-ordered, so only the last one needs
    /// checking.
    fn any_core_idle(&self) -> bool {
        self.cores
            .iter()
            .any(|c| c.plan.back().is_none_or(|s| s.end <= self.now))
    }

    /// Record a job's final quality and drop it from the live structures.
    /// No-op for unknown or already-settled ids (e.g. double discard).
    fn settle(&mut self, id: JobId) {
        let r = match self.loc.get(&id) {
            Some(&Loc::Queue(qi)) => {
                let qi = qi as usize;
                debug_assert!(!self.queue_dead[qi], "live queue slot for {id:?}");
                self.queue_dead[qi] = true;
                self.queue_holes += 1;
                self.queue[qi]
            }
            Some(&Loc::Core { core, idx }) => {
                let jobs = &mut self.cores[core as usize].jobs;
                let r = jobs.swap_remove(idx as usize);
                // Re-index the job the swap displaced into `idx`.
                if let Some(moved) = jobs.get(idx as usize) {
                    self.loc.insert(moved.job.id, Loc::Core { core, idx });
                }
                r
            }
            _ => return,
        };
        self.loc.insert(id, Loc::Settled);
        let quality = self.cfg.quality.job_quality(&r.job, r.processed);
        self.report.total_quality += quality;
        let outcome = if demand_met(r.processed, r.job.demand) {
            self.report.counters.jobs_satisfied += 1;
            SettleOutcome::Satisfied
        } else if r.processed > 1e-9 {
            self.report.counters.jobs_partial += 1;
            SettleOutcome::Partial
        } else {
            self.report.counters.jobs_zero += 1;
            SettleOutcome::Zero
        };
        if O::ENABLED {
            self.obs
                .record(self.now, ObsEvent::JobSettle { job: id, outcome });
        }
        self.stats.record(JobOutcome {
            id,
            release: r.job.release,
            settled: self.now,
            processed: r.processed,
            demand: r.job.demand,
            quality,
        });
    }

    /// Drop tombstoned queue slots, preserving arrival order, and refresh
    /// the index of every slot that shifted.
    fn compact_queue(&mut self) {
        if self.queue_holes == 0 {
            return;
        }
        let mut w = 0;
        for r in 0..self.queue.len() {
            if !self.queue_dead[r] {
                if w != r {
                    self.queue[w] = self.queue[r];
                    self.loc.insert(self.queue[w].job.id, Loc::Queue(w as u32));
                }
                w += 1;
            }
        }
        self.queue.truncate(w);
        self.queue_dead.clear();
        self.queue_dead.resize(w, false);
        self.queue_holes = 0;
    }

    /// Integrate core `c`'s plan (progress, energy, trace, completions)
    /// from its last advance point to `t`.
    fn advance_core(&mut self, c: usize, t: SimTime) {
        let model = self.cfg.model;
        let record_trace = self.cfg.record_trace;
        let core = &mut self.cores[c];
        if t <= core.advanced_to {
            return;
        }
        let mut completions: Vec<JobId> = Vec::new();
        while let Some(front) = core.plan.front_mut() {
            if front.start >= t {
                break;
            }
            let seg_start = front.start.max(core.advanced_to);
            // Ambient draw over the idle gap before the slice.
            let gap = seg_start.saturating_since(core.advanced_to);
            if !gap.is_zero() && core.ambient > 0.0 {
                self.report.energy_joules += model.dynamic_energy(core.ambient, gap.as_secs_f64());
            }
            let seg_end = front.end.min(t);
            let dur = seg_end.saturating_since(seg_start);
            if !dur.is_zero() {
                self.stats.add_busy(c, dur.as_micros());
                self.report.energy_joules += model.dynamic_energy(front.speed, dur.as_secs_f64());
                let vol = rate_units_per_us(front.speed) * dur.as_micros() as f64;
                // Slices for settled (e.g. discarded) jobs still burn
                // energy but no longer make progress — only a live
                // occupant of this core accumulates volume. A linear find
                // beats the location index here: this runs per slice
                // segment and the per-core job list is small, so one or
                // two comparisons are cheaper than a hash.
                if let Some(r) = core.jobs.iter_mut().find(|r| r.job.id == front.job) {
                    r.processed += vol;
                    if demand_met(r.processed, r.job.demand) {
                        completions.push(r.job.id);
                    }
                }
                if record_trace {
                    self.trace.push(TraceSlice {
                        core: c,
                        job: front.job,
                        start: seg_start,
                        end: seg_end,
                        speed: front.speed,
                    });
                }
            }
            if front.end <= t {
                core.advanced_to = front.end;
                core.plan.pop_front();
            } else {
                front.start = t;
                core.advanced_to = t;
                break;
            }
        }
        // Trailing idle stretch up to `t`.
        let gap = t.saturating_since(core.advanced_to);
        if !gap.is_zero() && core.ambient > 0.0 {
            self.report.energy_joules += model.dynamic_energy(core.ambient, gap.as_secs_f64());
        }
        core.advanced_to = t;
        for id in completions {
            self.settle(id);
        }
    }

    /// Invoke the policy and apply its decision.
    fn invoke(&mut self, policy: &mut dyn SchedulingPolicy) {
        let now = self.now;
        for c in 0..self.cores.len() {
            self.advance_core(c, now);
        }
        self.compact_queue();
        let decision = {
            // Views borrow each core's job list directly — building the
            // snapshot allocates one Vec of fat pointers, not a copy of
            // every job on every core.
            let views: Vec<CoreView<'_>> = self
                .cores
                .iter()
                .map(|c| CoreView {
                    jobs: &c.jobs,
                    busy: !c.plan.is_empty(),
                })
                .collect();
            let view = SystemView {
                now,
                queue: &self.queue,
                cores: &views,
                budget: self.cfg.budget,
                model: self.cfg.model,
            };
            policy.on_trigger(&view)
        };
        // §IV-E audit: a wakeup whose decision keeps everything — no
        // assignments, no discards, every plan entry `None`, ambient
        // speeds absent or bitwise-unchanged — did not *invoke* the
        // scheduler in the paper's sense (gated PlanEnd/quantum events
        // that keep a running plan were previously double-counted here).
        let kept_everything = decision.assignments.is_empty()
            && decision.discarded.is_empty()
            && decision.plans.iter().all(Option::is_none)
            && (decision.ambient_speeds.is_empty()
                || (decision.ambient_speeds.len() == self.cores.len()
                    && decision
                        .ambient_speeds
                        .iter()
                        .zip(&self.cores)
                        .all(|(s, c)| s.to_bits() == c.ambient.to_bits())));
        if kept_everything {
            self.report.counters.invocations_kept += 1;
        } else {
            self.report.counters.invocations += 1;
        }
        if O::ENABLED {
            self.obs.record(
                now,
                ObsEvent::Invoke {
                    kept: kept_everything,
                },
            );
        }

        // Move assigned jobs from the queue onto their cores. Ids that
        // are not waiting (unknown, already assigned, or settled) are
        // ignored; the queue slot is tombstoned to keep arrival order.
        for (id, core) in decision.assignments {
            if core >= self.cores.len() {
                debug_assert!(false, "assignment to nonexistent core {core}");
                continue;
            }
            if let Some(&Loc::Queue(qi)) = self.loc.get(&id) {
                let qi = qi as usize;
                debug_assert!(!self.queue_dead[qi], "live queue slot for {id:?}");
                self.queue_dead[qi] = true;
                self.queue_holes += 1;
                let r = self.queue[qi];
                let jobs = &mut self.cores[core].jobs;
                self.loc.insert(
                    id,
                    Loc::Core {
                        core: core as u32,
                        idx: jobs.len() as u32,
                    },
                );
                jobs.push(r);
            }
        }

        // Abandon discarded jobs (settled with whatever volume they have).
        for id in decision.discarded {
            if !matches!(self.loc.get(&id), Some(Loc::Settled)) {
                self.settle(id);
                self.report.counters.jobs_discarded += 1;
                if O::ENABLED {
                    self.obs.record(now, ObsEvent::JobDiscard { job: id });
                }
            }
        }

        // Install replacement plans. With a nonzero scheduling overhead,
        // the new plan only takes effect after the stall: slices are
        // clipped to start at `now + overhead` (work the stall displaces
        // is lost, exactly the §IV-E cost of invoking too often).
        let effective = now + self.cfg.overhead;
        for (c, plan) in decision.plans.into_iter().enumerate() {
            if c >= self.cores.len() {
                break;
            }
            let Some(plan) = plan else {
                // Explicit keep: the policy saw this core and left its
                // running plan in place.
                self.report.counters.plans_kept += 1;
                if O::ENABLED {
                    self.obs.record(now, ObsEvent::PlanKeep { core: c as u32 });
                }
                continue;
            };
            let core = &mut self.cores[c];
            core.version += 1;
            core.plan.clear();
            core.plan.extend(
                plan.slices()
                    .iter()
                    .filter(|s| s.end > effective)
                    .map(|s| Slice {
                        start: s.start.max(effective),
                        ..*s
                    }),
            );
            self.report.counters.plans_installed += 1;
            if O::ENABLED {
                let slices = core.plan.len() as u32;
                self.obs.record(
                    now,
                    ObsEvent::PlanInstall {
                        core: c as u32,
                        slices,
                    },
                );
            }
            let version = core.version;
            if let Some(end) = core.plan.back().map(|s| s.end) {
                if end > now {
                    self.push_event(
                        end,
                        EventKind::PlanEnd {
                            core: c as u32,
                            version,
                        },
                    );
                }
            } else if !plan.slices().is_empty() && effective > now {
                // The stall swallowed the whole plan: the core comes out
                // of the overhead window idle. Without an event here an
                // on_idle policy would never be re-invoked and the core
                // could sit idle forever.
                self.push_event(
                    effective,
                    EventKind::PlanEnd {
                        core: c as u32,
                        version,
                    },
                );
            }
        }

        // Ambient speeds for the inter-invocation window. Contract (see
        // `PolicyDecision::ambient_speeds`): empty = leave the previous
        // ambient speeds in place; otherwise exactly one entry per core.
        // Any other length is a policy bug and is ignored in release
        // builds.
        debug_assert!(
            decision.ambient_speeds.is_empty() || decision.ambient_speeds.len() == self.cores.len(),
            "ambient_speeds has {} entries for {} cores",
            decision.ambient_speeds.len(),
            self.cores.len()
        );
        if decision.ambient_speeds.len() == self.cores.len() {
            for (core, &s) in self.cores.iter_mut().zip(&decision.ambient_speeds) {
                core.ambient = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;
    use qes_core::quality::ExpQuality;
    use qes_multicore::{BaselineOrder, BaselinePolicy, DesPolicy, PolicyDecision, TriggerRequest};

    const MODEL: PolynomialPower = PolynomialPower::PAPER_SIM;
    const Q: ExpQuality = ExpQuality::PAPER_DEFAULT;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn cfg(end_ms: u64, cores: usize, budget: f64) -> SimConfig<'static> {
        SimConfig {
            num_cores: cores,
            budget,
            model: &MODEL,
            quality: &Q,
            end: ms(end_ms),
            record_trace: true,
            overhead: SimDuration::ZERO,
        }
    }

    fn job(id: u32, r: u64, d: u64, w: f64) -> Job {
        Job::new(id, ms(r), ms(d), w).unwrap()
    }

    #[test]
    fn single_light_job_completes_under_des() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 100.0)]).unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total(), 1);
        assert_eq!(report.jobs_satisfied(), 1);
        assert!((report.normalized_quality() - 1.0).abs() < 1e-6);
        assert!(report.energy_joules > 0.0);
        assert!((trace.total_volume() - 100.0).abs() < 0.1);
    }

    #[test]
    fn overload_yields_partial_quality() {
        // One core, 5 W (1 GHz), two 200-unit jobs in a 100 ms window:
        // capacity 100 units → each gets ~50.
        let jobs = JobSet::new(vec![job(0, 0, 100, 200.0), job(1, 0, 100, 200.0)]).unwrap();
        let c = cfg(500, 1, 5.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total(), 2);
        assert_eq!(report.jobs_satisfied(), 0);
        assert_eq!(report.jobs_partial(), 2);
        assert!((trace.total_volume() - 100.0).abs() < 1.0);
        let expect = 2.0 * Q.value(50.0) / (2.0 * Q.value(200.0));
        assert!((report.normalized_quality() - expect).abs() < 0.02);
    }

    #[test]
    fn energy_matches_trace_for_gating_policies() {
        let jobs = JobSet::new(vec![
            job(0, 0, 150, 120.0),
            job(1, 40, 190, 80.0),
            job(2, 90, 240, 150.0),
        ])
        .unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::new();
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        // C-DVFS has zero ambient draw: report energy == trace energy.
        assert!((report.energy_joules - trace.dynamic_energy(&MODEL)).abs() < 1e-6);
    }

    #[test]
    fn no_dvfs_burns_ambient_power() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 100.0)]).unwrap();
        let c = cfg(1000, 2, 40.0);
        let mut p = DesPolicy::on_arch(qes_multicore::ArchKind::NoDvfs);
        let (report, trace) = Simulator::run(&c, &mut p, &jobs);
        // Ambient draw makes total energy exceed the executed slices'.
        assert!(report.energy_joules > trace.dynamic_energy(&MODEL) + 1.0);
        // From the first invocation (t=0 arrival is not a DES trigger; the
        // counter is 8, so the first trigger is... the idle/quantum path).
        // Regardless: by t=1 s both cores have burned ≈ 20 W each for most
        // of the second.
        assert!(report.energy_joules < 40.0 * 1.0 + 1e-6);
    }

    #[test]
    fn fcfs_runs_jobs_one_at_a_time() {
        let jobs = JobSet::new(vec![
            job(0, 0, 150, 100.0),
            job(1, 0, 150, 100.0),
            job(2, 0, 150, 100.0),
        ])
        .unwrap();
        let c = cfg(1000, 1, 20.0);
        let mut p = BaselinePolicy::new(BaselineOrder::Fcfs);
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // 1 core at ≤2 GHz, 150 ms: at most 300 units — two jobs max, and
        // FCFS runs at the slowest finishing speed, so job 0 takes
        // 150 ms at 2/3 GHz... then jobs 1,2 expire: exactly 1 satisfied.
        assert_eq!(report.jobs_total(), 3);
        assert_eq!(report.jobs_satisfied(), 1);
        assert_eq!(report.jobs_zero(), 2);
    }

    #[test]
    fn deadline_settles_waiting_jobs_with_zero_quality() {
        // A policy that never assigns anything.
        struct Lazy;
        impl SchedulingPolicy for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn triggers(&self) -> TriggerRequest {
                TriggerRequest {
                    quantum: None,
                    counter: None,
                    on_idle: false,
                    idle_requires_work: false,
                    on_arrival: false,
                }
            }
            fn on_trigger(&mut self, v: &SystemView<'_>) -> PolicyDecision {
                PolicyDecision::keep_all(v.num_cores())
            }
        }
        let jobs = JobSet::new(vec![job(0, 0, 100, 50.0)]).unwrap();
        let c = cfg(500, 1, 20.0);
        let (report, _) = Simulator::run(&c, &mut Lazy, &jobs);
        assert_eq!(report.jobs_total(), 1);
        assert_eq!(report.jobs_zero(), 1);
        assert_eq!(report.total_quality, 0.0);
        assert_eq!(report.energy_joules, 0.0);
    }

    #[test]
    fn arrivals_beyond_horizon_are_ignored() {
        let jobs = JobSet::new(vec![job(0, 0, 150, 50.0), job(1, 2000, 2150, 50.0)]).unwrap();
        let c = cfg(1000, 1, 20.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total(), 1);
    }

    #[test]
    fn horizon_settles_in_flight_jobs() {
        // Deadline beyond the horizon: settled at the horizon with partial
        // progress.
        let jobs = JobSet::new(vec![job(0, 0, 5000, 2000.0)]).unwrap();
        let c = cfg(1000, 1, 20.0); // 2 GHz max → ≤ 2000 units in 1 s
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_total(), 1);
        assert_eq!(report.jobs_satisfied() + report.jobs_partial(), 1);
        assert!(report.total_quality > 0.0);
    }

    #[test]
    fn quantum_trigger_fires_repeatedly() {
        let jobs = JobSet::new(vec![job(0, 0, 900, 10.0)]).unwrap();
        let c = cfg(2000, 1, 20.0);
        let mut p = DesPolicy::new(); // 500 ms quantum
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // Quantum fires at 500/1000/1500/2000 ms; idle triggers add more.
        assert!(report.invocations() >= 4, "{}", report.invocations());
        assert_eq!(report.jobs_satisfied(), 1);
    }

    #[test]
    fn kept_plan_wakeups_are_not_policy_invocations() {
        // §IV-E audit (regression): one 100-unit job spanning the whole
        // 2 s horizon on one budget-free core. The t=0 idle trigger
        // assigns and installs a plan (counted). The quantum ticks at
        // 500/1000/1500 ms find a busy core on a free streak with no new
        // work — DES keeps the plan, so these wakeups must NOT count as
        // policy invocations. At 2000 ms the job has settled and the tick
        // replans the empty system (counted). The old accounting reported
        // 5 invocations here; the §IV-E taxonomy says 2.
        let jobs = JobSet::new(vec![job(0, 0, 2000, 100.0)]).unwrap();
        let c = cfg(2000, 1, 20.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_satisfied(), 1);
        assert_eq!(report.invocations(), 2, "{report}");
        assert_eq!(report.invocations_kept(), 3, "{report}");
        assert_eq!(report.counters.wakeups(), 5);
    }

    #[test]
    fn observed_run_is_bitwise_identical_and_consistent() {
        let v: Vec<Job> = (0..30)
            .map(|i| job(i, (i as u64) * 13, (i as u64) * 13 + 150, 40.0))
            .collect();
        let jobs = JobSet::new(v).unwrap();
        let c = cfg(1000, 2, 20.0);
        let (plain, _) = Simulator::run(&c, &mut DesPolicy::new(), &jobs);
        let mut reg = qes_core::MetricsRegistry::new();
        let (observed, _) = Simulator::run_observed(&c, &mut DesPolicy::new(), &jobs, &mut reg);
        assert_eq!(
            plain.total_quality.to_bits(),
            observed.total_quality.to_bits()
        );
        assert_eq!(
            plain.energy_joules.to_bits(),
            observed.energy_joules.to_bits()
        );
        assert_eq!(plain.counters, observed.counters);
        // The observer's fold agrees with the engine's own counters.
        assert_eq!(reg.counter("engine.invocations"), plain.invocations());
        assert_eq!(
            reg.counter("engine.invocations_kept"),
            plain.invocations_kept()
        );
        assert_eq!(
            reg.counter("engine.settle.satisfied"),
            plain.jobs_satisfied() as u64
        );
        assert_eq!(reg.counter("engine.arrivals"), plain.jobs_total() as u64);
        assert_eq!(
            reg.counter("engine.plan.installed"),
            plain.counters.plans_installed
        );
        // DES contributed policy counters through the end-of-run drain.
        assert!(reg.counter("des.triggers") > 0);
    }

    #[test]
    fn counter_trigger_batches_arrivals() {
        // Jobs 0–3 occupy the 4 cores (idle triggers); jobs 4–11 arrive
        // while every core is busy, so nothing but the counter (8) can
        // fire before their deadlines — and it must, on the 8th waiter.
        let mut v: Vec<Job> = (0..4).map(|i| job(i, 0, 150, 10.0)).collect();
        v.extend((4..12).map(|i| job(i, 10 + (i as u64 - 4), 300, 10.0)));
        let jobs = JobSet::new(v).unwrap();
        let c = cfg(1000, 4, 40.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert_eq!(report.jobs_satisfied(), 12);
        assert!(report.invocations() >= 2);
    }

    #[test]
    fn energy_never_exceeds_budget_times_time() {
        let jobs = JobSet::new(
            (0..40)
                .map(|i| job(i, (i as u64) * 5, (i as u64) * 5 + 150, 300.0))
                .collect(),
        )
        .unwrap();
        let c = cfg(1000, 4, 40.0);
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        assert!(report.energy_joules <= 40.0 * 1.0 + 1e-6);
    }

    /// Assigns the first queued job to core 0 and plans one slice of a
    /// fixed duration at 1 GHz — a scalpel for testing the engine's
    /// completion accounting.
    struct OneSlice {
        us: u64,
    }
    impl SchedulingPolicy for OneSlice {
        fn name(&self) -> String {
            "one-slice".into()
        }
        fn triggers(&self) -> TriggerRequest {
            TriggerRequest {
                quantum: None,
                counter: None,
                on_idle: false,
                idle_requires_work: false,
                on_arrival: true,
            }
        }
        fn on_trigger(&mut self, v: &SystemView<'_>) -> PolicyDecision {
            let Some(r) = v.queue.first() else {
                return PolicyDecision::keep_all(v.num_cores());
            };
            let slice = Slice {
                job: r.job.id,
                start: v.now,
                end: v.now + SimDuration::from_micros(self.us),
                speed: 1.0,
            };
            PolicyDecision {
                assignments: vec![(r.job.id, 0)],
                plans: vec![Some(qes_core::schedule::CoreSchedule::new(vec![slice]))],
                discarded: Vec::new(),
                ambient_speeds: Vec::new(),
            }
        }
    }

    #[test]
    fn satisfaction_tolerance_is_relative_to_demand() {
        // 1000-unit job at 1 GHz needs exactly 1 000 000 µs. A slice
        // 50 µs short under-delivers 0.05 units — 5e-5 of the demand,
        // inside the relative tolerance, so the job counts as satisfied.
        // (The old absolute 1e-3-unit epsilon would have called this
        // partial.)
        let jobs = JobSet::new(vec![job(0, 0, 2000, 1000.0)]).unwrap();
        let c = cfg(2500, 1, 20.0);
        let (report, _) = Simulator::run(&c, &mut OneSlice { us: 999_950 }, &jobs);
        assert_eq!(report.jobs_satisfied(), 1, "5e-5 shortfall must satisfy");
        assert_eq!(report.jobs_partial(), 0);

        // A 1000 µs shortfall (1e-3 of the demand) exceeds the tolerance:
        // genuinely incomplete work is still reported as partial.
        let jobs = JobSet::new(vec![job(0, 0, 2000, 1000.0)]).unwrap();
        let (report, _) = Simulator::run(&c, &mut OneSlice { us: 999_000 }, &jobs);
        assert_eq!(
            report.jobs_satisfied(),
            0,
            "1e-3 shortfall must not satisfy"
        );
        assert_eq!(report.jobs_partial(), 1);
    }

    #[test]
    fn overhead_swallowed_plan_still_reinvokes_idle_policy() {
        // Always plans a 10 ms slice for its job; with a 50 ms scheduling
        // overhead every plan is clipped to nothing. The engine must keep
        // firing the idle trigger through the stall, not leave the core
        // idle until the deadline.
        struct Stubborn;
        impl SchedulingPolicy for Stubborn {
            fn name(&self) -> String {
                "stubborn".into()
            }
            fn triggers(&self) -> TriggerRequest {
                TriggerRequest {
                    quantum: None,
                    counter: None,
                    on_idle: true,
                    idle_requires_work: false,
                    on_arrival: true,
                }
            }
            fn on_trigger(&mut self, v: &SystemView<'_>) -> PolicyDecision {
                let queued = v.queue.first().copied();
                let running = v.cores[0].live_jobs(v.now).next();
                let Some(r) = queued.or(running) else {
                    return PolicyDecision::keep_all(v.num_cores());
                };
                let slice = Slice {
                    job: r.job.id,
                    start: v.now,
                    end: v.now + SimDuration::from_millis(10),
                    speed: 2.0,
                };
                PolicyDecision {
                    assignments: queued.map(|q| (q.job.id, 0)).into_iter().collect(),
                    plans: vec![Some(qes_core::schedule::CoreSchedule::new(vec![slice]))],
                    discarded: Vec::new(),
                    ambient_speeds: Vec::new(),
                }
            }
        }
        let jobs = JobSet::new(vec![job(0, 0, 300, 100.0)]).unwrap();
        let mut c = cfg(500, 1, 20.0);
        c.overhead = SimDuration::from_millis(50);
        let (report, _) = Simulator::run(&c, &mut Stubborn, &jobs);
        // Re-invoked roughly every overhead window until the deadline;
        // without the clipped-plan event it would stall after the first.
        assert!(
            report.invocations() >= 3,
            "{} invocations",
            report.invocations()
        );
        assert_eq!(report.jobs_total(), 1);
    }

    #[test]
    fn queue_keeps_arrival_order_across_expiries() {
        // Records the queue ids the policy observes at each trigger.
        struct Snoop {
            seen: Vec<Vec<u32>>,
        }
        impl SchedulingPolicy for Snoop {
            fn name(&self) -> String {
                "snoop".into()
            }
            fn triggers(&self) -> TriggerRequest {
                TriggerRequest {
                    quantum: Some(SimDuration::from_millis(100)),
                    counter: None,
                    on_idle: false,
                    idle_requires_work: false,
                    on_arrival: false,
                }
            }
            fn on_trigger(&mut self, v: &SystemView<'_>) -> PolicyDecision {
                self.seen.push(v.queue.iter().map(|r| r.job.id.0).collect());
                PolicyDecision::keep_all(v.num_cores())
            }
        }
        // Job 0 expires at 50 ms; jobs 1–3 live on. The 100 ms quantum
        // view must list the survivors in arrival order — settling from
        // the middle of the queue must not reorder it.
        let jobs = JobSet::new(vec![
            job(0, 0, 50, 10.0),
            job(1, 10, 300, 10.0),
            job(2, 10, 300, 10.0),
            job(3, 20, 300, 10.0),
        ])
        .unwrap();
        let c = cfg(400, 1, 20.0);
        let mut snoop = Snoop { seen: Vec::new() };
        let _ = Simulator::run(&c, &mut snoop, &jobs);
        assert!(
            snoop.seen.contains(&vec![1, 2, 3]),
            "expected an in-order view of the survivors, saw {:?}",
            snoop.seen
        );
    }

    #[test]
    fn non_partial_jobs_all_or_nothing() {
        // Overloaded core with non-partial jobs: quality comes only from
        // fully finished ones.
        let mut j0 = job(0, 0, 100, 150.0);
        let mut j1 = job(1, 0, 100, 150.0);
        j0.partial = false;
        j1.partial = false;
        let jobs = JobSet::new(vec![j0, j1]).unwrap();
        let c = cfg(500, 1, 5.0); // 1 GHz → 100 units capacity
        let mut p = DesPolicy::new();
        let (report, _) = Simulator::run(&c, &mut p, &jobs);
        // Neither can finish 150 units in 100 ms at 1 GHz… so both end up
        // discarded or zero; quality 0.
        assert_eq!(report.jobs_satisfied(), 0);
        assert_eq!(report.total_quality, 0.0);
    }
}
