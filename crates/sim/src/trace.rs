//! Execution traces: the exact slices a simulation ran.
//!
//! The §V-G validation replays a DES scheduling trace on a (simulated)
//! real cluster and compares energies, so the engine can record every
//! executed slice. Traces are also handy for debugging and for asserting
//! schedule invariants in integration tests.

use qes_core::job::JobId;
use qes_core::power::PowerModel;
use qes_core::time::SimTime;

/// One executed run of a job on a core at constant speed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSlice {
    /// Core index.
    pub core: usize,
    /// Job executed.
    pub job: JobId,
    /// Start instant.
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Speed in GHz.
    pub speed: f64,
}

impl TraceSlice {
    /// Work volume of the slice.
    pub fn volume(&self) -> f64 {
        qes_core::volume(self.speed, self.end.saturating_since(self.start))
    }
}

/// The executed slices of a whole simulation, in execution order per core.
#[derive(Clone, Debug, Default)]
pub struct SimTrace {
    slices: Vec<TraceSlice>,
}

impl SimTrace {
    /// Record a slice.
    pub fn push(&mut self, s: TraceSlice) {
        self.slices.push(s);
    }

    /// All recorded slices.
    pub fn slices(&self) -> &[TraceSlice] {
        &self.slices
    }

    /// Number of recorded slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Total dynamic energy of the trace under `model` — the exact
    /// integral the simulator reports (excluding ambient draw).
    pub fn dynamic_energy(&self, model: &dyn PowerModel) -> f64 {
        self.slices
            .iter()
            .map(|s| model.dynamic_energy(s.speed, s.end.saturating_since(s.start).as_secs_f64()))
            .sum()
    }

    /// Total work volume of the trace.
    pub fn total_volume(&self) -> f64 {
        self.slices.iter().map(|s| s.volume()).sum()
    }

    /// Busy seconds per core.
    pub fn busy_seconds(&self, num_cores: usize) -> Vec<f64> {
        let mut busy = vec![0.0; num_cores];
        for s in &self.slices {
            if s.core < num_cores {
                busy[s.core] += s.end.saturating_since(s.start).as_secs_f64();
            }
        }
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qes_core::power::PolynomialPower;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn energy_and_volume_integrals() {
        let mut t = SimTrace::default();
        t.push(TraceSlice {
            core: 0,
            job: JobId(0),
            start: ms(0),
            end: ms(1000),
            speed: 2.0,
        });
        t.push(TraceSlice {
            core: 1,
            job: JobId(1),
            start: ms(0),
            end: ms(500),
            speed: 1.0,
        });
        let m = PolynomialPower::PAPER_SIM;
        // 20 W × 1 s + 5 W × 0.5 s = 22.5 J.
        assert!((t.dynamic_energy(&m) - 22.5).abs() < 1e-9);
        // 2000 + 500 units.
        assert!((t.total_volume() - 2500.0).abs() < 1e-9);
        let busy = t.busy_seconds(2);
        assert!((busy[0] - 1.0).abs() < 1e-12);
        assert!((busy[1] - 0.5).abs() < 1e-12);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
