//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few entry points it needs: [`RngCore`], the blanket
//! [`Rng`] extension (only `gen::<f64>()`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. `StdRng` here is xoshiro256++ seeded via
//! SplitMix64 — a different stream than upstream's ChaCha12, so seeded
//! runs are reproducible *within* this workspace but not bit-identical to
//! runs against the real `rand`. All statistical tests in the repo assert
//! distributional properties with tolerances, never exact draws.

/// Core source of randomness (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution (subset of
/// `rand::distributions::Standard`).
pub trait SampleStandard {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53-bit precision, like upstream `rand`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution (`f64` → `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 so that nearby seeds give uncorrelated
    /// streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_give_distinct_streams() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0);
        }

        #[test]
        fn f64_is_uniform_unit_interval() {
            let mut rng = StdRng::seed_from_u64(42);
            let n = 100_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let u: f64 = rng.gen();
                assert!((0.0..1.0).contains(&u));
                sum += u;
            }
            let mean = sum / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        }

        #[test]
        fn stdrng_is_send_sync_and_unshared() {
            // The parallel sweep contract (DESIGN.md §"Parallel
            // execution and determinism"): every sweep point builds its
            // own generator from its own seed, so `StdRng` must be plain
            // owned data — movable to a worker thread, shareable by
            // reference, and with no hidden global stream state.
            fn assert_send_sync<T: Send + Sync>() {}
            assert_send_sync::<StdRng>();
            // Two same-seed generators advance independently: drawing
            // from one must not perturb the other.
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let first = a.next_u64();
            for _ in 0..10 {
                let _ = a.next_u64();
            }
            assert_eq!(b.next_u64(), first);
        }

        #[test]
        fn works_through_dyn_rngcore() {
            let mut rng = StdRng::seed_from_u64(3);
            let dyn_rng: &mut dyn RngCore = &mut rng;
            let u: f64 = dyn_rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
